// Command zrquery is the offline trace-analytics tool over the
// simulator's deterministic event streams: trace files from `zrsim
// -trace` (Chrome JSON or .ndjson), flight-recorder dumps, and captured
// /trace/tail NDJSON all load through the same reader.
//
//	zrquery report TRACE [-chrome spans.json]   derived window/burst timeline
//	zrquery diff A B [-context N]               first-divergence lockstep diff
//	zrquery flame TRACE [energy flags]          folded "refresh cost by cause" stacks
//	zrquery energy TRACE [energy flags]         per-bank attribution + energy breakdown
//
// Exit codes: 0 success (diff: no divergence), 1 divergence or failed
// reconciliation, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"zerorefresh/internal/attr"
	"zerorefresh/internal/energy"
	"zerorefresh/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: zrquery <command> [flags] <trace...>

commands:
  report TRACE [-chrome OUT]    derive the window/burst timeline (OUT gets Chrome span JSON)
  diff A B [-context N]         pinpoint the first divergent event of two traces
  flame TRACE [energy flags]    folded flame-graph stacks of energy by cause
  energy TRACE [energy flags] [-metrics FILE]
                                per-bank attribution and energy breakdown,
                                reconciled against a metrics.json snapshot

energy flags (shared by flame and energy):
  -gbit N         device density in Gbit for the Table II tRFC (default 32)
  -devices N      devices per rank (default 1)
  -rows-per-ar N  refresh steps covered by one AR command (default 32)
  -read-duty F    read-burst duty cycle (default 0.08)
  -write-duty F   write-burst duty cycle (default 0.02)
  -line-nj F      writeback energy per cacheline in nJ (default 0)
`

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "report":
		return runReport(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "flame", "energy":
		return runEnergy(args[0], args[1:], stdout, stderr)
	case "help", "-h", "--help":
		fmt.Fprint(stdout, usage)
		return 0
	}
	fmt.Fprintf(stderr, "zrquery: unknown command %q\n%s", args[0], usage)
	return 2
}

// fail prints an error in the tool's one format and returns the I/O exit
// code.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "zrquery: %v\n", err)
	return 2
}

func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chromeOut := fs.String("chrome", "", "also write the derived spans as Chrome trace JSON to this file")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "zrquery report: want exactly one trace file")
		return 2
	}
	s, err := attr.Open(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	tl := attr.Derive(s)
	fmt.Fprint(stdout, tl.Report())
	if *chromeOut != "" {
		var b strings.Builder
		tl.WriteChromeSpans(&b)
		if err := os.WriteFile(*chromeOut, []byte(b.String()), 0o644); err != nil {
			return fail(stderr, err)
		}
	}
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	context := fs.Int("context", 3, "surrounding events to show on each side of the divergence")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "zrquery diff: want exactly two trace files")
		return 2
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	var d *attr.Divergence
	if strings.HasSuffix(pathA, ".ndjson") && strings.HasSuffix(pathB, ".ndjson") {
		// NDJSON pairs stream in lockstep without materialising either
		// trace.
		fa, err := os.Open(pathA)
		if err != nil {
			return fail(stderr, err)
		}
		defer fa.Close()
		fb, err := os.Open(pathB)
		if err != nil {
			return fail(stderr, err)
		}
		defer fb.Close()
		d, err = attr.DiffStreams(fa, fb, *context)
		if err != nil {
			return fail(stderr, err)
		}
	} else {
		sa, err := attr.Open(pathA)
		if err != nil {
			return fail(stderr, err)
		}
		sb, err := attr.Open(pathB)
		if err != nil {
			return fail(stderr, err)
		}
		d = attr.Diff(sa.Events, sb.Events, *context)
	}
	fmt.Fprint(stdout, d.Report(pathA, pathB))
	if d != nil {
		return 1
	}
	return 0
}

// costFlags registers the shared energy-model flags and returns a closure
// building attr.Costs from energy.TableII once parsed.
func costFlags(fs *flag.FlagSet) func() attr.Costs {
	gbit := fs.Int("gbit", 32, "device density in Gbit (selects the Table II tRFC)")
	devices := fs.Int("devices", 1, "devices per rank")
	rowsPerAR := fs.Int("rows-per-ar", 32, "refresh steps covered by one AR command")
	readDuty := fs.Float64("read-duty", 0.08, "read-burst duty cycle")
	writeDuty := fs.Float64("write-duty", 0.02, "write-burst duty cycle")
	lineNJ := fs.Float64("line-nj", 0, "writeback energy per cacheline, nJ")
	return func() attr.Costs {
		p := energy.TableII()
		tRFC := energy.DensityTRFC(*gbit)
		ar := *rowsPerAR
		if ar < 1 {
			ar = 1
		}
		return attr.Costs{
			StepJ:       p.RefreshEnergyPerARJ(tRFC, *devices) / float64(ar),
			LineJ:       *lineNJ * 1e-9,
			BackgroundW: p.BackgroundPowerW(*devices),
			BusW:        p.ReadPowerW(*readDuty, *devices) + p.WritePowerW(*writeDuty, *devices),
		}
	}
}

func runEnergy(cmd string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	costs := costFlags(fs)
	metricsPath := fs.String("metrics", "", "reconcile against this metrics.json snapshot (energy only)")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "zrquery %s: want exactly one trace file\n", cmd)
		return 2
	}
	s, err := attr.Open(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	a := attr.Attribute(s)
	c := costs()
	if cmd == "flame" {
		fmt.Fprint(stdout, a.Flame(c))
		return 0
	}
	fmt.Fprint(stdout, a.Report(c))
	if *metricsPath != "" {
		snap, err := readMetricsJSON(*metricsPath)
		if err != nil {
			return fail(stderr, err)
		}
		bad := a.Reconcile(snap)
		if len(bad) == 0 {
			fmt.Fprintln(stdout, "reconciliation: trace counts match the metrics registry")
			return 0
		}
		fmt.Fprintln(stdout, "reconciliation FAILED:")
		for _, m := range bad {
			fmt.Fprintf(stdout, "  %s\n", m)
		}
		return 1
	}
	return 0
}

// readMetricsJSON loads an obs metrics.json exposition (or /metrics.json
// capture) back into a snapshot; only counters matter to reconciliation.
func readMetricsJSON(path string) (metrics.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	var doc struct {
		Samples []struct {
			Name  string          `json:"name"`
			Kind  string          `json:"kind"`
			Value json.RawMessage `json:"value"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return metrics.Snapshot{}, fmt.Errorf("%s: %v", path, err)
	}
	var snap metrics.Snapshot
	for _, s := range doc.Samples {
		if s.Kind != "counter" {
			continue
		}
		var v int64
		if err := json.Unmarshal(s.Value, &v); err != nil {
			return metrics.Snapshot{}, fmt.Errorf("%s: counter %s: %v", path, s.Name, err)
		}
		snap.Samples = append(snap.Samples, metrics.Sample{Name: s.Name, Kind: metrics.KindCounter, Int: v})
	}
	return snap, nil
}
