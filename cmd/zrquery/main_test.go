package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zerorefresh/internal/sim"
	"zerorefresh/internal/trace"
	"zerorefresh/internal/workload"
)

// smokeTrace runs the smoke scenario with the given seed and writes its
// trace as an NDJSON file, returning the path. The per-shard ring is
// large enough to hold the whole run, so same-seed traces are complete
// and byte-identical.
func smokeTrace(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	prof, ok := workload.ByName("sphinx3")
	if !ok {
		t.Fatal("sphinx3 profile missing")
	}
	o := sim.Options{
		Capacity:   4 << 20,
		Windows:    2,
		Warmup:     1,
		Seed:       seed,
		Benchmarks: []workload.Profile{prof},
		Trace:      trace.New(1 << 18),
	}
	if _, _, err := sim.RunSmoke(o); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteNDJSON(f, o.Trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffEndToEnd is the acceptance path: two same-seed smoke traces
// diff clean (exit 0, "no divergence"); a seed-perturbed pair pinpoints
// the first divergent event with context (exit 1).
func TestDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	a := smokeTrace(t, dir, "a.ndjson", 1)
	b := smokeTrace(t, dir, "b.ndjson", 1)
	c := smokeTrace(t, dir, "c.ndjson", 2)

	var out, errOut strings.Builder
	if code := run([]string{"diff", a, b}, &out, &errOut); code != 0 {
		t.Fatalf("same-seed diff exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "no divergence") {
		t.Fatalf("same-seed diff output: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	code := run([]string{"diff", "-context", "2", a, c}, &out, &errOut)
	if code != 1 {
		t.Fatalf("perturbed diff exit %d (stderr: %s)", code, errOut.String())
	}
	rep := out.String()
	for _, want := range []string{"first divergence at event", "t=", "shard=", "seq=", "fields differing"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("divergence report missing %q:\n%s", want, rep)
		}
	}
}

// TestReportFlameEnergyEndToEnd drives the remaining subcommands over a
// real smoke trace and checks shape and determinism.
func TestReportFlameEnergyEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tr := smokeTrace(t, dir, "smoke.ndjson", 1)

	runOnce := func(args ...string) string {
		t.Helper()
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("%v exit %d: %s", args, code, errOut.String())
		}
		return out.String()
	}

	spans := filepath.Join(dir, "spans.json")
	rep := runOnce("report", "-chrome", spans, tr)
	if !strings.Contains(rep, "timeline:") || !strings.Contains(rep, "window 0") {
		t.Fatalf("report output:\n%s", rep)
	}
	if rep != runOnce("report", tr) {
		t.Fatal("report not deterministic across invocations")
	}
	sp, err := os.ReadFile(spans)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sp), `"traceEvents"`) {
		t.Fatalf("chrome spans malformed: %.120s", sp)
	}

	flame := runOnce("flame", "-rows-per-ar", "2", tr)
	if !strings.Contains(flame, "refresh.issued") || !strings.Contains(flame, "background") {
		t.Fatalf("flame output:\n%s", flame)
	}

	en := runOnce("energy", "-rows-per-ar", "2", tr)
	for _, want := range []string{"attribution:", "refresh share", "rollover totals"} {
		if !strings.Contains(en, want) {
			t.Fatalf("energy output missing %q:\n%s", want, en)
		}
	}
}

// TestUsageErrors pins the exit-code contract for bad invocations.
func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args exit %d", code)
	}
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown command exit %d", code)
	}
	if code := run([]string{"diff", "only-one.ndjson"}, &out, &errOut); code != 2 {
		t.Fatalf("diff arity exit %d", code)
	}
	if code := run([]string{"report", "/nonexistent.ndjson"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file exit %d", code)
	}
	if code := run([]string{"help"}, &out, &errOut); code != 0 {
		t.Fatalf("help exit %d", code)
	}
}
