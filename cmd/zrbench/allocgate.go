package main

import (
	"fmt"
	"io"
	"regexp"
)

// Allocation gate: the CI check that the steady-state hot paths stay
// allocation-free.
//
// The perf work that keeps the simulator fast leans on a simple global
// invariant — after warm-up, the per-operation paths (line reads/writes,
// refresh groups, bitmap scans, idle replay, transform kernels, event-queue
// churn) never touch the allocator. A single escaped closure or interface
// boxing on one of these paths shows up as allocs/op > 0 in the committed
// baseline long before it shows up as a ns/op regression, so the gate audits
// the allocs/op column of the baseline directly instead of re-measuring.
//
// The benchmark set is pinned in the binary rather than configured: a gate
// that a PR can re-scope in the same commit that regresses it gates nothing.
// Only the whole-window experiment drivers (internal/core BenchmarkWindows*)
// are exempt — each op there builds a full experiment (modules, engines,
// tracers), so per-window allocation is by design.

// allocExempt matches the benchmark keys (package.Name) whose operations
// legitimately allocate. Everything else in the baseline must be zero.
var allocExempt = regexp.MustCompile(`^internal/core\.BenchmarkWindows(Dense|Event)/`)

// runAllocGate implements the -allocgate mode: load a baseline and fail if
// any non-exempt benchmark reports a nonzero allocs/op.
func runAllocGate(file string, w io.Writer) error {
	r, err := loadReport(file)
	if err != nil {
		return err
	}
	var checked, violations int
	for _, b := range r.Benchmarks {
		key := benchKey(b)
		if allocExempt.MatchString(key) {
			continue
		}
		checked++
		if b.AllocsPerOp != 0 {
			violations++
			fmt.Fprintf(w, "  ALLOCS: %s %d allocs/op, %d B/op (steady-state paths must be allocation-free)\n",
				key, b.AllocsPerOp, b.BytesPerOp)
		}
	}
	fmt.Fprintf(w, "zrbench allocgate: %d steady-state benchmark(s) checked, %d violation(s)\n",
		checked, violations)
	if violations > 0 {
		return fmt.Errorf("%d steady-state benchmark(s) allocate per op", violations)
	}
	if checked == 0 {
		return fmt.Errorf("%s: no steady-state benchmarks to audit", file)
	}
	return nil
}
