// Command zrbench runs the simulator's hot-path microbenchmarks and emits a
// machine-readable performance baseline. The committed BENCH_9.json at the
// repository root is its output: regenerate with `make perfbench` after any
// datapath or scheduler change. The suite covers the line-granular
// scalar/batched pairs, the arena/CoW storage primitives, the event-queue
// primitives, and the dense-vs-event window drivers at several idle ratios.
//
// The report schema is deterministic — a fixed benchmark set, names sorted,
// GOMAXPROCS suffixes stripped — so two runs differ only in the measured
// ns/op values, never in shape. With -count > 1 each benchmark's lowest
// ns/op repetition is kept: the least-interference measurement, which is
// the stable quantity on shared runners.
//
// The -diff mode compares two baselines and fails on regressions, which is
// how CI gates a PR against the previous baseline generation:
//
//	zrbench -diff BENCH_8.json,BENCH_9.json -tolerance 0.10
//
// Only benchmarks present in both files are compared (a new generation may
// add suites); a shared benchmark more than tolerance slower fails.
//
// The -allocgate mode audits a committed baseline's allocs/op column: every
// benchmark in the steady-state set (everything except the whole-window
// drivers, which legitimately build per-window experiment state) must report
// exactly zero allocations per operation, or the gate fails. This is how CI
// pins the hot paths allocation-free without re-measuring them.
//
// Usage:
//
//	zrbench [-out BENCH_9.json] [-benchtime 100ms] [-count 1]
//	zrbench -diff OLD.json,NEW.json [-tolerance 0.10]
//	zrbench -allocgate BENCH_9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// suite is one `go test -bench` invocation over a hot-path package.
type suite struct {
	pkg   string
	bench string
}

// suites is the fixed benchmark set of the baseline: the batched-datapath
// pairs in the controller and refresh engine, the arena/CoW storage and
// bitmap-scan primitives in the rank model, the transform kernels, the
// event-queue primitive, the dense-vs-event window drivers, the
// introspection plane's trace tee, and the trace-diff lockstep loop.
var suites = []suite{
	{"./internal/dram", "BenchmarkFillRowWords|BenchmarkRefreshGroup|BenchmarkReplayRefreshGroup|BenchmarkNextRetentionDeadline"},
	{"./internal/memctrl", "BenchmarkWriteLine|BenchmarkReadLine|BenchmarkWriteZeroRow"},
	{"./internal/refresh", "BenchmarkAutoRefreshSet"},
	{"./internal/transform", "BenchmarkBitPlaneInverse|BenchmarkPipelineEncodeDecode"},
	{"./internal/engine", "BenchmarkEventQueuePushPop"},
	{"./internal/core", "BenchmarkWindowsDense|BenchmarkWindowsEvent"},
	{"./internal/obs", "BenchmarkFlightRecorderEmit"},
	{"./internal/attr", "BenchmarkDiffLockstep"},
}

// result is one benchmark measurement.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the BENCH_9.json document.
type report struct {
	Schema     string   `json:"schema"`
	BenchTime  string   `json:"benchtime"`
	Benchmarks []result `json:"benchmarks"`
}

// gomaxprocsSuffix is the `-8` style suffix the testing package appends to
// benchmark names; it varies by machine, so the baseline strips it.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. Non-benchmark lines (goos/pkg headers, PASS, ok) are skipped.
func parseBench(pkg string, out []byte) ([]result, error) {
	var results []result
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{
			Name:    gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Package: pkg,
		}
		rest := fields[2:]
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q of %q: %v", rest[i], line, err)
			}
			switch rest[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if r.NsPerOp == 0 {
			return nil, fmt.Errorf("no ns/op in benchmark line %q", line)
		}
		results = append(results, r)
	}
	return results, nil
}

// minByBench collapses -count repetitions of the same benchmark into the
// repetition with the lowest ns/op: the measurement with the least
// scheduler/noisy-neighbor interference, which is the stable quantity on
// shared runners. Order of first appearance is preserved (run sorts the
// final set anyway).
func minByBench(all []result) []result {
	idx := make(map[string]int, len(all))
	var folded []result
	for _, r := range all {
		key := r.Package + "." + r.Name
		if i, ok := idx[key]; ok {
			if r.NsPerOp < folded[i].NsPerOp {
				folded[i] = r
			}
			continue
		}
		idx[key] = len(folded)
		folded = append(folded, r)
	}
	return folded
}

func run(out, benchtime string, count int) error {
	var all []result
	for _, s := range suites {
		args := []string{"test", "-run", "^$", "-bench", s.bench, "-benchmem",
			"-benchtime", benchtime, "-count", strconv.Itoa(count), s.pkg}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		output, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, output)
		}
		results, err := parseBench(strings.TrimPrefix(s.pkg, "./"), output)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return fmt.Errorf("%s: no benchmarks matched %q", s.pkg, s.bench)
		}
		all = append(all, results...)
	}
	all = minByBench(all)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Package != all[j].Package {
			return all[i].Package < all[j].Package
		}
		return all[i].Name < all[j].Name
	})
	doc, err := json.MarshalIndent(report{
		Schema: "zrbench/1", BenchTime: benchtime, Benchmarks: all,
	}, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(out, doc, 0o644)
}

func main() {
	out := flag.String("out", "BENCH_9.json", "output file, or - for stdout")
	benchtime := flag.String("benchtime", "100ms", "per-benchmark measurement time (go test -benchtime)")
	count := flag.Int("count", 1, "benchmark repetitions (go test -count)")
	diffFiles := flag.String("diff", "", "compare two baselines (OLD.json,NEW.json) instead of benchmarking; exits 1 on regressions")
	tolerance := flag.Float64("tolerance", 0.10, "with -diff, allowed fractional ns/op slowdown in shared benchmarks")
	allocGate := flag.String("allocgate", "", "audit a baseline's steady-state benchmarks for allocs/op == 0; exits 1 on violations")
	flag.Parse()
	if *diffFiles != "" {
		if err := runDiff(*diffFiles, *tolerance, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "zrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *allocGate != "" {
		if err := runAllocGate(*allocGate, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "zrbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *benchtime, *count); err != nil {
		fmt.Fprintln(os.Stderr, "zrbench:", err)
		os.Exit(1)
	}
}
