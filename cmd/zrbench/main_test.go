package main

import (
	"reflect"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := []byte(`goos: linux
goarch: amd64
pkg: zerorefresh/internal/memctrl
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWriteLine/raw/scalar-8         	  923661	       413.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkWriteLine/raw/batched-8        	 2260930	       192.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkWriteZeroRow/raw/batched-16    	    1000	      1050 ns/op	      64 B/op	       2 allocs/op
PASS
ok  	zerorefresh/internal/memctrl	4.163s
`)
	got, err := parseBench("internal/memctrl", out)
	if err != nil {
		t.Fatal(err)
	}
	want := []result{
		{Name: "BenchmarkWriteLine/raw/scalar", Package: "internal/memctrl", NsPerOp: 413.0},
		{Name: "BenchmarkWriteLine/raw/batched", Package: "internal/memctrl", NsPerOp: 192.6},
		{Name: "BenchmarkWriteZeroRow/raw/batched", Package: "internal/memctrl", NsPerOp: 1050, BytesPerOp: 64, AllocsPerOp: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseBench = %+v, want %+v", got, want)
	}
}

func TestParseBenchRejectsMissingNsPerOp(t *testing.T) {
	if _, err := parseBench("p", []byte("BenchmarkX-8 100 7 B/op 0 allocs/op\n")); err == nil {
		t.Fatal("expected error for a line without ns/op")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench("p", []byte("PASS\nok p 0.1s\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("parseBench on no benchmarks = %v, %v", got, err)
	}
}

func TestMinByBench(t *testing.T) {
	got := minByBench([]result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 120, AllocsPerOp: 1},
		{Name: "BenchmarkB", Package: "p", NsPerOp: 50},
		{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkA", Package: "q", NsPerOp: 10},
		{Name: "BenchmarkA", Package: "p", NsPerOp: 110, AllocsPerOp: 3},
	})
	want := []result{
		{Name: "BenchmarkA", Package: "p", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkB", Package: "p", NsPerOp: 50},
		{Name: "BenchmarkA", Package: "q", NsPerOp: 10},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("minByBench = %+v, want %+v", got, want)
	}
}
