package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func rep(benches ...result) report {
	return report{Schema: "zrbench/1", BenchTime: "100ms", Benchmarks: benches}
}

func TestDiffReportsPartition(t *testing.T) {
	before := rep(
		result{Name: "BenchmarkA", Package: "internal/x", NsPerOp: 100},
		result{Name: "BenchmarkB", Package: "internal/x", NsPerOp: 200},
		result{Name: "BenchmarkGone", Package: "internal/x", NsPerOp: 50},
	)
	after := rep(
		result{Name: "BenchmarkA", Package: "internal/x", NsPerOp: 105}, // +5%: inside tolerance
		result{Name: "BenchmarkB", Package: "internal/x", NsPerOp: 260}, // +30%: regression
		result{Name: "BenchmarkNew", Package: "internal/y", NsPerOp: 10},
	)
	regs, shared, added, removed := diffReports(before, after, 0.10)
	if !reflect.DeepEqual(shared, []string{"internal/x.BenchmarkA", "internal/x.BenchmarkB"}) {
		t.Fatalf("shared = %v", shared)
	}
	if !reflect.DeepEqual(added, []string{"internal/y.BenchmarkNew"}) {
		t.Fatalf("added = %v", added)
	}
	if !reflect.DeepEqual(removed, []string{"internal/x.BenchmarkGone"}) {
		t.Fatalf("removed = %v", removed)
	}
	if len(regs) != 1 || regs[0].key != "internal/x.BenchmarkB" {
		t.Fatalf("regressions = %+v, want only BenchmarkB", regs)
	}
	if regs[0].slowdown < 0.29 || regs[0].slowdown > 0.31 {
		t.Fatalf("slowdown = %v, want ~0.30", regs[0].slowdown)
	}
}

func TestDiffReportsExactTolerance(t *testing.T) {
	before := rep(result{Name: "BenchmarkA", Package: "p", NsPerOp: 100})
	after := rep(result{Name: "BenchmarkA", Package: "p", NsPerOp: 110})
	// Exactly at tolerance is not "past" it.
	if regs, _, _, _ := diffReports(before, after, 0.10); len(regs) != 0 {
		t.Fatalf("10%% slowdown at 10%% tolerance flagged: %+v", regs)
	}
	after.Benchmarks[0].NsPerOp = 110.2
	if regs, _, _, _ := diffReports(before, after, 0.10); len(regs) != 1 {
		t.Fatal("slowdown past tolerance not flagged")
	}
}

func writeReport(t *testing.T, dir, name string, r report) string {
	t.Helper()
	doc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", rep(
		result{Name: "BenchmarkA", Package: "p", NsPerOp: 100}))
	okPath := writeReport(t, dir, "ok.json", rep(
		result{Name: "BenchmarkA", Package: "p", NsPerOp: 101},
		result{Name: "BenchmarkNew", Package: "p", NsPerOp: 7}))
	badPath := writeReport(t, dir, "bad.json", rep(
		result{Name: "BenchmarkA", Package: "p", NsPerOp: 150}))

	var out strings.Builder
	if err := runDiff(oldPath+","+okPath, 0.10, &out); err != nil {
		t.Fatalf("clean diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "added:   p.BenchmarkNew") {
		t.Fatalf("added benchmark not reported:\n%s", out.String())
	}

	out.Reset()
	err := runDiff(oldPath+","+badPath, 0.10, &out)
	if err == nil {
		t.Fatalf("regression not fatal:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION: p.BenchmarkA") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}
}

func TestRunDiffRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", rep(result{Name: "BenchmarkA", Package: "p", NsPerOp: 1}))
	badSchema := writeReport(t, dir, "schema.json", report{Schema: "other/9",
		Benchmarks: []result{{Name: "BenchmarkA", Package: "p", NsPerOp: 1}}})
	var out strings.Builder
	for _, files := range []string{
		"only-one.json",
		good + "," + filepath.Join(dir, "missing.json"),
		good + "," + badSchema,
	} {
		if err := runDiff(files, 0.10, &out); err == nil {
			t.Fatalf("runDiff(%q) accepted bad input", files)
		}
	}
}
