package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baseline comparison: the CI perfbench regression gate.
//
// Baseline generations evolve — BENCH_6 adds the event-core suites BENCH_5
// never had — so the gate compares only the benchmarks both files share,
// treats additions and removals as informational, and fails only when a
// shared benchmark got more than `tolerance` slower in ns/op.

// regression is one shared benchmark that slowed past tolerance.
type regression struct {
	key      string
	oldNs    float64
	newNs    float64
	slowdown float64
}

// loadReport reads and validates one baseline file.
func loadReport(path string) (report, error) {
	var r report
	doc, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(doc, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.Schema != "zrbench/1" {
		return r, fmt.Errorf("%s: schema %q, want zrbench/1", path, r.Schema)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks", path)
	}
	return r, nil
}

// benchKey identifies a benchmark across baseline generations.
func benchKey(r result) string { return r.Package + "." + r.Name }

// diffReports compares two baselines and returns the regressions in shared
// benchmarks, plus the shared/added/removed partition for reporting.
func diffReports(before, after report, tolerance float64) (regs []regression, shared, added, removed []string) {
	oldNs := make(map[string]float64, len(before.Benchmarks))
	for _, b := range before.Benchmarks {
		oldNs[benchKey(b)] = b.NsPerOp
	}
	seen := make(map[string]bool, len(after.Benchmarks))
	for _, b := range after.Benchmarks {
		key := benchKey(b)
		seen[key] = true
		prev, ok := oldNs[key]
		if !ok {
			added = append(added, key)
			continue
		}
		shared = append(shared, key)
		if prev > 0 && b.NsPerOp > prev*(1+tolerance) {
			regs = append(regs, regression{
				key:      key,
				oldNs:    prev,
				newNs:    b.NsPerOp,
				slowdown: b.NsPerOp/prev - 1,
			})
		}
	}
	for key := range oldNs {
		if !seen[key] {
			removed = append(removed, key)
		}
	}
	sort.Strings(shared)
	sort.Strings(added)
	sort.Strings(removed)
	sort.Slice(regs, func(i, j int) bool { return regs[i].key < regs[j].key })
	return regs, shared, added, removed
}

// runDiff implements the -diff mode: load OLD,NEW, compare, report, and
// return an error when any shared benchmark regressed past tolerance.
func runDiff(files string, tolerance float64, w io.Writer) error {
	parts := strings.Split(files, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-diff wants OLD.json,NEW.json, got %q", files)
	}
	before, err := loadReport(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	after, err := loadReport(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	regs, shared, added, removed := diffReports(before, after, tolerance)
	fmt.Fprintf(w, "zrbench diff: %d shared, %d added, %d removed (tolerance %.0f%%)\n",
		len(shared), len(added), len(removed), tolerance*100)
	for _, k := range added {
		fmt.Fprintf(w, "  added:   %s\n", k)
	}
	for _, k := range removed {
		fmt.Fprintf(w, "  removed: %s\n", k)
	}
	for _, r := range regs {
		fmt.Fprintf(w, "  REGRESSION: %s %.1f -> %.1f ns/op (+%.1f%%)\n",
			r.key, r.oldNs, r.newNs, r.slowdown*100)
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d shared benchmark(s) regressed past %.0f%%", len(regs), tolerance*100)
	}
	fmt.Fprintln(w, "  no regressions in shared benchmarks")
	return nil
}
