package main

import (
	"strings"
	"testing"
)

func TestRunAllocGateClean(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "clean.json", rep(
		result{Name: "BenchmarkRefreshGroup/discharged", Package: "internal/dram", NsPerOp: 40},
		result{Name: "BenchmarkWindowsEvent/idle99", Package: "internal/core", NsPerOp: 780156, BytesPerOp: 627, AllocsPerOp: 9},
	))
	var out strings.Builder
	if err := runAllocGate(path, &out); err != nil {
		t.Fatalf("clean gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 steady-state benchmark(s) checked, 0 violation(s)") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestRunAllocGateFlagsSteadyStateAllocs(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "dirty.json", rep(
		result{Name: "BenchmarkFillRowWords/cow", Package: "internal/dram", NsPerOp: 90, BytesPerOp: 48, AllocsPerOp: 1},
		result{Name: "BenchmarkWriteLine/raw/batched", Package: "internal/memctrl", NsPerOp: 148},
	))
	var out strings.Builder
	err := runAllocGate(path, &out)
	if err == nil {
		t.Fatalf("allocating steady-state benchmark not fatal:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS: internal/dram.BenchmarkFillRowWords/cow 1 allocs/op") {
		t.Fatalf("violation not reported:\n%s", out.String())
	}
}

func TestRunAllocGateExemptOnlyIsError(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "exempt.json", rep(
		result{Name: "BenchmarkWindowsDense/idle50", Package: "internal/core", NsPerOp: 1, AllocsPerOp: 200}))
	var out strings.Builder
	if err := runAllocGate(path, &out); err == nil {
		t.Fatal("gate with nothing to audit should fail loudly")
	}
}

func TestRunAllocGateRejectsBadFile(t *testing.T) {
	var out strings.Builder
	if err := runAllocGate("no-such-file.json", &out); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
