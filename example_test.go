package zerorefresh_test

import (
	"fmt"

	"zerorefresh"
)

// ExampleNewSystem builds a small system, cleanses the whole memory (as
// the OS would at boot / page free) and shows the refresh engine skipping
// everything after one learning window.
func ExampleNewSystem() {
	sys, err := zerorefresh.NewSystem(zerorefresh.DefaultConfig(2 << 20))
	if err != nil {
		panic(err)
	}
	sys.RunWindow() // learning window
	st := sys.RunWindow()
	fmt.Printf("idle memory refresh reduction: %.0f%%\n", 100*st.Reduction())
	fmt.Printf("retention failures: %d\n", sys.DecayEvents())
	// Output:
	// idle memory refresh reduction: 100%
	// retention failures: 0
}

// ExampleEBDIEncode shows the value transformation turning a value-local
// cacheline into mostly-zero words.
func ExampleEBDIEncode() {
	line := zerorefresh.Line{1000, 1001, 999, 1004, 1000, 998, 1002, 1003}
	enc := zerorefresh.BitPlaneTranspose(zerorefresh.EBDIEncode(line))
	fmt.Println("zero tail words:", enc.ZeroTailWords())
	back := zerorefresh.EBDIDecode(zerorefresh.BitPlaneInverse(enc))
	fmt.Println("lossless:", back == line)
	// Output:
	// zero tail words: 6
	// lossless: true
}

// ExampleRunScenario reproduces one cell of the paper's Figure 14 matrix.
func ExampleRunScenario() {
	prof, _ := zerorefresh.BenchmarkByName("sphinx3")
	res, err := zerorefresh.RunScenario(zerorefresh.ExperimentOptions{
		Capacity: 4 << 20,
		Windows:  2,
	}, prof, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sphinx3 fully-allocated reduction is high: %v\n", res.Reduction > 0.5)
	fmt.Printf("data loss: %d\n", res.Decays)
	// Output:
	// sphinx3 fully-allocated reduction is high: true
	// data loss: 0
}
