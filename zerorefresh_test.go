package zerorefresh_test

import (
	"testing"

	"zerorefresh"
)

// The facade tests exercise the library exactly as the examples and an
// external adopter would.

func TestPublicQuickstartFlow(t *testing.T) {
	sys, err := zerorefresh.NewSystem(zerorefresh.DefaultConfig(4 << 20))
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := zerorefresh.BenchmarkByName("libquantum")
	if !ok {
		t.Fatal("libquantum missing")
	}
	for p := 0; p < sys.Pages()/4; p++ {
		if err := sys.FillPageFromProfile(prof, p, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	sys.RunWindow()
	st := sys.RunWindow()
	if st.Reduction() < 0.5 {
		t.Fatalf("3/4-idle rank reduction %.3f, want > 0.5", st.Reduction())
	}
	if err := sys.VerifyPage(prof, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if sys.DecayEvents() != 0 {
		t.Fatal("retention failure")
	}
}

func TestPublicTransformAPI(t *testing.T) {
	var raw [64]byte
	for i := range raw {
		raw[i] = byte(i)
	}
	l := zerorefresh.LineFromBytes(&raw)
	enc := zerorefresh.BitPlaneTranspose(zerorefresh.EBDIEncode(l))
	dec := zerorefresh.EBDIDecode(zerorefresh.BitPlaneInverse(enc))
	if dec != l {
		t.Fatal("public transform round trip failed")
	}
	if got := dec.Bytes(); got != raw {
		t.Fatal("byte serialization round trip failed")
	}
}

func TestPublicSuiteAndTraces(t *testing.T) {
	if n := len(zerorefresh.Benchmarks()); n != 23 {
		t.Fatalf("suite size %d, want 23", n)
	}
	if n := len(zerorefresh.Traces()); n != 3 {
		t.Fatalf("traces %d, want 3", n)
	}
	if _, ok := zerorefresh.TraceByName("google"); !ok {
		t.Fatal("google trace missing")
	}
	a := zerorefresh.NewAllocator(100)
	if err := a.SetTargetFraction(0.5); err != nil {
		t.Fatal(err)
	}
	if a.AllocatedPages() != 50 {
		t.Fatalf("allocated %d, want 50", a.AllocatedPages())
	}
}

func TestPublicMappings(t *testing.T) {
	for _, m := range []zerorefresh.ChipMapping{
		zerorefresh.RotatedMapping(), zerorefresh.DirectMapping(), zerorefresh.ByteScatterMapping(),
	} {
		l := zerorefresh.Line{1, 2, 3, 4, 5, 6, 7, 8}
		if m.Gather(m.Scatter(l, 5), 5) != l {
			t.Fatalf("mapping %s not lossless", m.Name())
		}
	}
}

func TestPublicExperimentSmoke(t *testing.T) {
	o := zerorefresh.ExperimentOptions{Capacity: 4 << 20, Windows: 2}
	prof, _ := zerorefresh.BenchmarkByName("sphinx3")
	res, err := zerorefresh.RunScenario(o, prof, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction <= 0 {
		t.Fatal("expected refresh reduction")
	}
	if tab := zerorefresh.RunTable1(1, 2000); len(tab.Rows) != 3 {
		t.Fatal("Table I should have three traces")
	}
	if s := zerorefresh.RunTable2(); len(s) == 0 {
		t.Fatal("Table II render empty")
	}
}

func TestRetentionConstants(t *testing.T) {
	if zerorefresh.TRETNormal != 2*zerorefresh.TRETExtended {
		t.Fatal("normal retention must be double the extended window")
	}
}
